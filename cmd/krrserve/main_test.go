package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"krr/internal/fleet"
	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
)

func testServer(t *testing.T, opts model.Options) (*server, *httptest.Server) {
	t.Helper()
	return testServerCfg(t, fleet.Config{Default: fleet.Spec{Model: "krr", Options: opts}})
}

func testServerCfg(t *testing.T, cfg fleet.Config) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, contentType, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func del(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestIngestNDJSONAndMRC(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})

	var b strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "{\"key\": %d}\n", i%97)
	}
	b.WriteString("{\"key\": \"user:42\", \"size\": 512, \"op\": \"set\"}\n")
	resp := post(t, ts.URL+"/ingest", "application/x-ndjson", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var ing struct {
		Ingested int `json:"ingested"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if ing.Ingested != 2001 {
		t.Fatalf("ingested %d, want 2001", ing.Ingested)
	}

	resp = get(t, ts.URL+"/mrc?size=50")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/mrc status %d", resp.StatusCode)
	}
	var point struct {
		Size      uint64  `json:"size"`
		MissRatio float64 `json:"miss_ratio"`
		Requests  uint64  `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&point); err != nil {
		t.Fatal(err)
	}
	if point.Requests != 2001 {
		t.Fatalf("requests %d, want 2001", point.Requests)
	}
	if point.MissRatio < 0 || point.MissRatio > 1 {
		t.Fatalf("miss ratio %v out of range", point.MissRatio)
	}

	// Snapshots must not finalize: a second ingest still succeeds.
	resp = post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 1}\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-snapshot ingest status %d", resp.StatusCode)
	}
}

func TestIngestBinary(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})

	gen := workload.NewZipf(3, 500, 0.9, workload.FixedSize(trace.DefaultObjectSize), 0.1)
	tr, err := trace.Collect(gen, 5000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/ingest", "application/octet-stream", buf.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary ingest status %d", resp.StatusCode)
	}

	resp = get(t, ts.URL+"/curve?points=16")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/curve status %d", resp.StatusCode)
	}
	c, err := mrc.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 || c.Eval(0) != 1 {
		t.Fatalf("malformed live curve: %d points", c.Len())
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	s, ts := testServer(t, model.Options{K: 4, Seed: 1})
	for _, body := range []string{
		"{\"key\": 1}\nnot json\n",
		"{\"size\": 8}\n",                   // missing key
		"{\"key\": 1, \"op\": \"frobn\"}\n", // unknown op
	} {
		resp := post(t, ts.URL+"/ingest", "application/x-ndjson", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp := post(t, ts.URL+"/ingest", "application/octet-stream", "XXXXnot a trace")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad magic: status %d, want 400", resp.StatusCode)
	}
	if s.ingestErrs.Load() != 4 {
		t.Fatalf("ingest error counter = %d, want 4", s.ingestErrs.Load())
	}
}

func TestByteUnitWithoutByteMode(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1}) // bytes off
	post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 1}\n")
	resp := get(t, ts.URL+"/mrc?size=100&unit=bytes")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("byte query on bytes-off model: status %d, want 400", resp.StatusCode)
	}
}

func TestByteUnitCurve(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1, Bytes: model.BytesOn})
	var b strings.Builder
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&b, "{\"key\": %d, \"size\": %d}\n", i%200, 100+(i%7)*300)
	}
	post(t, ts.URL+"/ingest", "application/x-ndjson", b.String())
	resp := get(t, ts.URL+"/curve?unit=bytes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/curve unit=bytes status %d", resp.StatusCode)
	}
	c, err := mrc.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 {
		t.Fatalf("degenerate byte curve: %d points", c.Len())
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})
	post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 1}\n{\"key\": 2}\n")
	resp := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"krrserve_ingest_requests_total 2",
		"krr_model_requests_seen_total{tenant=\"default\"} 2",
		"krr_model_stack_len{tenant=\"default\"}",
		"tenant_requests_total{tenant=\"default\"} 2",
		"fleet_tenants 1",
		"fleet_footprint_bytes",
		"# TYPE krrserve_uptime_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestMetricsLabelsPerTenant checks that tenant metric families appear
// once per tenant, with HELP/TYPE headers deduplicated across tenants.
func TestMetricsLabelsPerTenant(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})
	post(t, ts.URL+"/tenants/a/ingest", "application/x-ndjson", "{\"key\": 1}\n")
	post(t, ts.URL+"/tenants/b/ingest", "application/x-ndjson", "{\"key\": 1}\n{\"key\": 2}\n")
	var buf bytes.Buffer
	buf.ReadFrom(get(t, ts.URL+"/metrics").Body)
	body := buf.String()
	for _, want := range []string{
		"tenant_requests_total{tenant=\"a\"} 1",
		"tenant_requests_total{tenant=\"b\"} 2",
		"fleet_tenants 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if n := strings.Count(body, "# TYPE tenant_requests_total"); n != 1 {
		t.Fatalf("TYPE header for tenant_requests_total appears %d times, want 1:\n%s", n, body)
	}
}

func TestShardedServer(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1, Workers: 3})
	var b strings.Builder
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&b, "{\"key\": %d}\n", i%300)
	}
	post(t, ts.URL+"/ingest", "application/x-ndjson", b.String())
	resp := get(t, ts.URL+"/curve")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/curve status %d", resp.StatusCode)
	}
	c, err := mrc.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 {
		t.Fatal("degenerate sharded live curve")
	}
	resp = get(t, ts.URL+"/metrics")
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "krr_model_pipe_batches_total") {
		t.Fatal("/metrics missing shard pipe telemetry")
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})
	post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 9}\n")
	resp := get(t, ts.URL+"/stats")
	var st struct {
		Seen      uint64 `json:"seen"`
		Finalized bool   `json:"finalized"`
		Footprint int64  `json:"footprint_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Seen != 1 || st.Finalized {
		t.Fatalf("stats = %+v", st)
	}
	if st.Footprint <= 0 {
		t.Fatalf("footprint %d, want > 0", st.Footprint)
	}
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
}

func TestFinalCurveMatchesLastSnapshot(t *testing.T) {
	s, ts := testServer(t, model.Options{K: 4, Seed: 1})
	var b strings.Builder
	for i := 0; i < 2500; i++ {
		fmt.Fprintf(&b, "{\"key\": %d}\n", i%150)
	}
	post(t, ts.URL+"/ingest", "application/x-ndjson", b.String())

	resp := get(t, ts.URL+"/curve")
	live, err := mrc.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	finalPath := filepath.Join(t.TempDir(), "final.json")
	if err := s.writeFinal(finalPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(finalPath)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := mrc.ReadJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() != fin.Len() {
		t.Fatalf("live curve %d points, final %d", live.Len(), fin.Len())
	}
	for i := range fin.Sizes {
		if live.Sizes[i] != fin.Sizes[i] || live.Miss[i] != fin.Miss[i] {
			t.Fatalf("live and final curves diverge at point %d", i)
		}
	}

	// Ingest after finalization is refused, not crashed — on every
	// tenant, not just the default.
	resp = post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 1}\n")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-final ingest status %d, want 409", resp.StatusCode)
	}
	resp = post(t, ts.URL+"/tenants/other/ingest", "application/x-ndjson", "{\"key\": 1}\n")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-final tenant ingest status %d, want 409", resp.StatusCode)
	}
}

func TestTenantLifecycle(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})

	// Explicit create with a non-default model spec.
	resp := post(t, ts.URL+"/tenants", "application/json",
		`{"id": "t1", "model": "krr-bucket", "k": 5, "seed": 7}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	// Duplicate id conflicts.
	resp = post(t, ts.URL+"/tenants", "application/json", `{"id": "t1"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create status %d, want 409", resp.StatusCode)
	}
	// Bad specs are rejected.
	for _, body := range []string{
		`{"model": "krr"}`,                   // missing id
		`{"id": "x", "model": "nope"}`,       // unknown model
		`{"id": "x", "bytes": "frobnicate"}`, // unknown byte mode
		`not json`,
	} {
		resp = post(t, ts.URL+"/tenants", "application/json", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Ingest into the created tenant, auto-create another.
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "{\"key\": %d}\n", i%80)
	}
	if resp := post(t, ts.URL+"/tenants/t1/ingest", "application/x-ndjson", b.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("t1 ingest status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/tenants/t2/ingest", "application/x-ndjson", b.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("t2 ingest status %d", resp.StatusCode)
	}

	// List shows both with footprints.
	var listing struct {
		Tenants   []fleet.TenantInfo `json:"tenants"`
		Footprint int64              `json:"footprint_bytes"`
	}
	if err := json.NewDecoder(get(t, ts.URL+"/tenants").Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tenants) != 2 {
		t.Fatalf("listed %d tenants, want 2", len(listing.Tenants))
	}
	if listing.Tenants[0].ID != "t1" || listing.Tenants[0].Model != "krr-bucket" {
		t.Fatalf("tenant rows wrong: %+v", listing.Tenants)
	}
	if listing.Footprint <= 0 {
		t.Fatalf("fleet footprint %d, want > 0", listing.Footprint)
	}

	// Tenant-scoped curve and mrc.
	resp = get(t, ts.URL+"/tenants/t1/mrc?size=40")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("t1 /mrc status %d", resp.StatusCode)
	}
	c, err := mrc.ReadJSON(get(t, ts.URL+"/tenants/t2/curve").Body)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 || c.Eval(0) != 1 {
		t.Fatal("t2 curve malformed")
	}
	// Unknown tenants 404 on reads instead of auto-creating.
	if resp := get(t, ts.URL+"/tenants/ghost/curve"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost curve status %d, want 404", resp.StatusCode)
	}

	// Delete removes exactly once.
	if resp := del(t, ts.URL+"/tenants/t1"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if resp := del(t, ts.URL+"/tenants/t1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status %d, want 404", resp.StatusCode)
	}
}

// TestFleetSmoke is the check.sh fleet-smoke stage: three tenants with
// distinct workload shapes, one shared budget, and the /allocate plan
// must be budget-feasible, monotone in budget, and deterministic.
func TestFleetSmoke(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})

	ndjson := func(r trace.Reader, n int) string {
		var b strings.Builder
		lim := trace.LimitReader(r, n)
		for {
			req, err := lim.Next()
			if err != nil {
				break
			}
			fmt.Fprintf(&b, "{\"key\": %d}\n", req.Key)
		}
		return b.String()
	}
	hot := workload.NewZipf(1, 300, 0.9, nil, 0)
	broad := workload.NewUniform(2, 5000, nil)
	broad.SetKeySpace(1 << 40)
	loop := workload.NewLoop(800, nil)
	loop.SetKeySpace(2 << 40)
	for id, body := range map[string]string{
		"hot":   ndjson(hot, 20000),
		"broad": ndjson(broad, 20000),
		"loop":  ndjson(loop, 20000),
	} {
		resp := post(t, ts.URL+"/tenants/"+id+"/ingest", "application/x-ndjson", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s ingest status %d", id, resp.StatusCode)
		}
	}

	type allocResp struct {
		Waterfill fleet.Plan `json:"waterfill"`
		Baselines struct {
			Proportional fleet.Plan `json:"proportional"`
			Uniform      fleet.Plan `json:"uniform"`
		} `json:"baselines"`
	}
	fetch := func(budget int) allocResp {
		t.Helper()
		resp := get(t, fmt.Sprintf("%s/allocate?budget=%d", ts.URL, budget))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/allocate status %d", resp.StatusCode)
		}
		var out allocResp
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	a := fetch(3000)
	if err := a.Waterfill.Feasible(); err != nil {
		t.Fatalf("waterfill plan infeasible: %v", err)
	}
	if len(a.Waterfill.Allocations) != 3 {
		t.Fatalf("allocations = %d, want 3", len(a.Waterfill.Allocations))
	}
	if a.Waterfill.AggregateMiss > a.Baselines.Proportional.AggregateMiss+1e-12 {
		t.Fatalf("waterfill %v worse than proportional %v",
			a.Waterfill.AggregateMiss, a.Baselines.Proportional.AggregateMiss)
	}
	if a.Waterfill.AggregateMiss > a.Baselines.Uniform.AggregateMiss+1e-12 {
		t.Fatalf("waterfill %v worse than uniform %v",
			a.Waterfill.AggregateMiss, a.Baselines.Uniform.AggregateMiss)
	}

	// Monotone: more budget never predicts more aggregate misses.
	last := 2.0
	for _, budget := range []int{500, 1000, 2000, 4000} {
		p := fetch(budget).Waterfill
		if err := p.Feasible(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if p.AggregateMiss > last+1e-12 {
			t.Fatalf("aggregate miss rose with budget at %d: %v after %v", budget, p.AggregateMiss, last)
		}
		last = p.AggregateMiss
	}

	// Deterministic for a fixed trace set.
	if b := fetch(3000); !reflect.DeepEqual(a, b) {
		t.Fatalf("allocation not deterministic:\n%+v\n%+v", a, b)
	}

	// Bad queries are rejected.
	for _, q := range []string{"/allocate", "/allocate?budget=0", "/allocate?budget=x", "/allocate?budget=10&unit=parsecs"} {
		if resp := get(t, ts.URL+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status %d, want 400", q, resp.StatusCode)
		}
	}
	// Byte budgets need byte-capable models.
	if resp := get(t, ts.URL+"/allocate?budget=1000000&unit=bytes"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bytes allocate on object-only models: status %d, want 400", resp.StatusCode)
	}
}
