package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"krr/internal/model"
	"krr/internal/trace"
	"krr/internal/wire"
)

// startWireTest opens a wire listener over a test server on a loopback
// port and returns its address.
func startWireTest(t *testing.T, s *server) (*wire.Server, string) {
	t.Helper()
	wsrv, err := wire.NewServer(wire.Config{Sink: fleetSink{s: s}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go wsrv.Serve(ln)
	t.Cleanup(func() { wsrv.Close() })
	wsrv.MetricsInto(s.set, "wire_")
	return wsrv, ln.Addr().String()
}

// TestWireIngestEndToEnd drives the binary ingest plane into the fleet
// and reads the result back over the HTTP API: tenant auto-created,
// every request counted, wire_ metrics exposed.
func TestWireIngestEndToEnd(t *testing.T) {
	s, ts := testServer(t, model.Options{K: 5, Seed: 1})
	wsrv, addr := startWireTest(t, s)

	c, err := wire.Dial(addr, "wire-tenant")
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]trace.Request, 5000)
	for i := range reqs {
		reqs[i] = trace.Request{Key: uint64(i % 700), Size: 100, Op: trace.OpGet}
	}
	for off := 0; off < len(reqs); off += 512 {
		end := off + 512
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := c.SendBatch(reqs[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.AckedRequests != uint64(len(reqs)) || st.DroppedRequests != 0 {
		t.Fatalf("stats %+v", st)
	}
	wsrv.Close() // drain queued frames into the fleet

	resp := get(t, ts.URL+"/tenants/wire-tenant/stats")
	var stats struct {
		Seen uint64 `json:"seen"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Seen != uint64(len(reqs)) {
		t.Fatalf("tenant saw %d requests, want %d", stats.Seen, len(reqs))
	}

	resp = get(t, ts.URL+"/metrics")
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("wire_requests_total %d", len(reqs)),
		"wire_dropped_requests_total 0",
		"wire_ingest_latency_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// The curve is readable and non-trivial.
	resp = get(t, ts.URL+"/tenants/wire-tenant/mrc?size=350")
	var mr struct {
		MissRatio float64 `json:"miss_ratio"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.MissRatio <= 0 || mr.MissRatio >= 1 {
		t.Fatalf("miss ratio %v out of (0, 1)", mr.MissRatio)
	}
}

// TestWireIngestAfterFinalize pins the shutdown path: once the server
// finalizes, wire frames are rejected (sink error -> StatusBad) rather
// than silently absorbed.
func TestWireIngestAfterFinalize(t *testing.T) {
	s, _ := testServer(t, model.Options{})
	_, addr := startWireTest(t, s)
	s.final.Store(true)

	c, err := wire.Dial(addr, "late")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []trace.Request{{Key: 1, Size: 1, Op: trace.OpGet}}
	// Frames are acked at admission, so the sink error surfaces only
	// after the worker touches the first frame: keep sending until the
	// failure propagates back (StatusBad kills the ack stream).
	deadline := time.Now().Add(5 * time.Second)
	var sendErr error
	for time.Now().Before(deadline) {
		if sendErr = c.SendBatch(reqs); sendErr != nil {
			break
		}
		if sendErr = c.Flush(); sendErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	_, closeErr := c.Close()
	if sendErr == nil && closeErr == nil {
		t.Fatal("wire ingest into a finalized server reported no error")
	}
	if _, ok := s.reg.Get("late"); ok {
		t.Fatal("finalized server still created the tenant")
	}
}
