package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"krr/internal/hashing"
	"krr/internal/trace"
)

// ndjsonReader streams NDJSON ingest bodies as trace requests. It is
// strictly line-delimited (one JSON object per line, as the NDJSON
// spec requires) and parses canonical lines — flat objects with
// integer or plain-ASCII-string keys — with a hand-rolled scanner that
// allocates nothing per line. Anything the fast parser does not
// recognize (escaped or non-ASCII strings, floats, unknown fields,
// unusual whitespace) falls back to encoding/json for that line, so
// the accepted language and the produced requests are unchanged; only
// the cost of the common case is.
//
// The previous implementation ran json.Decoder.Decode into a struct
// with a json.RawMessage key per line — several heap allocations per
// request. Under the batched ingest plane the parser is the whole HTTP
// ingest cost, so this path is worth the hand-rolled scanner.
type ndjsonReader struct {
	sc   *bufio.Scanner
	line int
	// forceSlow routes every line through the encoding/json fallback —
	// the equivalence tests pin fast == slow on identical input.
	forceSlow bool
}

// maxNDJSONLine bounds one ingest line (1 MiB, far past any real key).
const maxNDJSONLine = 1 << 20

func newNDJSONReader(r io.Reader) *ndjsonReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxNDJSONLine)
	return &ndjsonReader{sc: sc}
}

// Next implements trace.Reader.
func (r *ndjsonReader) Next() (trace.Request, error) {
	for {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return trace.Request{}, fmt.Errorf("line %d: %w", r.line+1, err)
			}
			return trace.Request{}, io.EOF
		}
		r.line++
		line := r.sc.Bytes()
		if isBlank(line) {
			continue
		}
		if !r.forceSlow {
			if req, ok := parseNDJSONLine(line); ok {
				return req, nil
			}
		}
		// Slow path: exotic but possibly valid line.
		var n ndjsonReq
		if err := json.Unmarshal(line, &n); err != nil {
			return trace.Request{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		req, err := n.request()
		if err != nil {
			return trace.Request{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return req, nil
	}
}

func isBlank(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}

// parseNDJSONLine is the allocation-free fast path for one canonical
// request line. It returns ok=false — punting to encoding/json — for
// anything outside the canonical shape, including every error case, so
// error messages always come from the fallback and stay identical to
// the pre-fast-path behaviour.
func parseNDJSONLine(b []byte) (trace.Request, bool) {
	var req trace.Request
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return req, false
	}
	i = skipSpace(b, i+1)
	var haveKey bool
	if i < len(b) && b[i] == '}' {
		return req, false // no fields -> "missing key" error, fallback
	}
	for {
		// Field name.
		name, j, ok := parseString(b, i)
		if !ok {
			return req, false
		}
		i = skipSpace(b, j)
		if i >= len(b) || b[i] != ':' {
			return req, false
		}
		i = skipSpace(b, i+1)
		// Field value, dispatched on the name.
		switch {
		case bytesEq(name, "key"):
			if i < len(b) && b[i] == '"' {
				s, j, ok := parseString(b, i)
				if !ok {
					return req, false
				}
				req.Key = hashing.Bytes(s)
				i = j
			} else {
				v, j, ok := parseUint(b, i, math.MaxUint64)
				if !ok {
					return req, false
				}
				req.Key = v
				i = j
			}
			haveKey = true
		case bytesEq(name, "size"):
			v, j, ok := parseUint(b, i, math.MaxUint32)
			if !ok {
				return req, false
			}
			req.Size = uint32(v)
			i = j
		case bytesEq(name, "op"):
			s, j, ok := parseString(b, i)
			if !ok {
				return req, false
			}
			switch {
			case len(s) == 0, bytesEq(s, "get"):
				req.Op = trace.OpGet
			case bytesEq(s, "set"):
				req.Op = trace.OpSet
			case bytesEq(s, "delete"):
				req.Op = trace.OpDelete
			default:
				return req, false // unknown op -> fallback for the error
			}
			i = j
		default:
			return req, false // unknown field: json ignores it; punt
		}
		i = skipSpace(b, i)
		if i >= len(b) {
			return req, false
		}
		if b[i] == '}' {
			break
		}
		if b[i] != ',' {
			return req, false
		}
		i = skipSpace(b, i+1)
	}
	if skipSpace(b, i+1) != len(b) {
		return req, false // trailing bytes after the object
	}
	if !haveKey {
		return req, false // -> "missing key" error from the fallback
	}
	if req.Size == 0 {
		req.Size = trace.DefaultObjectSize
	}
	return req, true
}

func skipSpace(b []byte, i int) int {
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r' || b[i] == '\n') {
		i++
	}
	return i
}

// parseString parses a JSON string starting at b[i] and returns its
// raw contents. It only accepts printable-ASCII strings with no escape
// sequences — the raw bytes then equal the decoded string, so they can
// be compared and hashed directly. Everything else punts to the
// fallback (which also canonicalizes invalid UTF-8 the way
// encoding/json does).
func parseString(b []byte, i int) ([]byte, int, bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, false
	}
	start := i + 1
	for j := start; j < len(b); j++ {
		switch c := b[j]; {
		case c == '"':
			return b[start:j], j + 1, true
		case c == '\\' || c < 0x20 || c >= 0x80:
			return nil, i, false
		}
	}
	return nil, i, false
}

// parseUint parses a plain non-negative JSON integer at b[i]. Signs,
// fractions, exponents, leading zeros and overflow all punt.
func parseUint(b []byte, i int, max uint64) (uint64, int, bool) {
	start := i
	var v uint64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		d := uint64(b[i] - '0')
		if v > (max-d)/10 {
			return 0, start, false
		}
		v = v*10 + d
		i++
	}
	if i == start {
		return 0, start, false
	}
	if b[start] == '0' && i-start > 1 {
		return 0, start, false // leading zero: not a valid JSON number
	}
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, start, false
	}
	return v, i, true
}

func bytesEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := range b {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}
