// Compare every MRC model in the repository on one workload: the
// exact-LRU techniques from related work (Olken stack, SHARDS, AET,
// Counter Stacks), the K-LRU-aware KRR model, and ground-truth
// simulation — making the paper's core point visible: on a
// K-sensitive trace, every LRU-only model shares the same systematic
// error for small K, and only KRR tracks the sampled cache.
package main

import (
	"fmt"
	"log"

	"krr"
	"krr/internal/aet"
	"krr/internal/olken"
	"krr/internal/shards"
	"krr/internal/trace"
)

func main() {
	const k = 4 // a small sampling size, where K-LRU differs most from LRU
	gen := krr.PresetReader("msr-web", 0.3, 7, false)
	tr, err := krr.Collect(gen, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	sum, _ := trace.Summarize(tr.Reader())
	sizes := krr.EvenSizes(uint64(sum.DistinctObjects), 8)

	// Ground truth: simulated K-LRU.
	truth, err := krr.SimulateMRC(tr, k, sizes, 3, 0)
	if err != nil {
		log.Fatal(err)
	}

	// KRR: the K-LRU-aware model.
	krrCurve, err := krr.BuildMRC(tr.Reader(), krr.Config{K: k, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// LRU-only techniques.
	ol := olken.NewProfiler(1)
	ol.ProcessAll(tr.Reader())
	exactLRU := ol.ObjectMRC(1)

	sh := shards.NewFixedRate(0.1, 2, true)
	sh.ProcessAll(tr.Reader())
	shardsCurve := sh.MRC()

	am := aet.New(0)
	am.ProcessAll(tr.Reader())
	aetCurve := am.MRC()

	cs := krr.NewCounterStack(krr.CounterStackConfig{DownsampleInterval: 1000})
	for _, req := range tr.Reqs {
		cs.Process(req)
	}
	csCurve := cs.MRC()

	fmt.Printf("msr-web-like, %d requests, %d objects — modeling a K-LRU cache with K=%d\n\n",
		sum.Requests, sum.DistinctObjects, k)
	fmt.Println("model            | MAE vs simulated K-LRU | models")
	rows := []struct {
		name   string
		curve  *krr.Curve
		models string
	}{
		{"KRR (this paper)", krrCurve, "K-LRU, any K"},
		{"Olken exact LRU", exactLRU, "LRU only"},
		{"SHARDS", shardsCurve, "LRU only"},
		{"AET", aetCurve, "LRU only"},
		{"Counter Stacks", csCurve, "LRU only"},
	}
	for _, r := range rows {
		fmt.Printf("%-16s | %22.4f | %s\n", r.name, krr.MAE(r.curve, truth, sizes), r.models)
	}
	fmt.Println("\nOn a Type A (K-sensitive) trace, the LRU-only models share a systematic")
	fmt.Println("error against the sampled cache; KRR is the only one that tracks it.")
}
