// Online MRC monitoring: the paper's motivating application (§1).
// A production cache serves traffic while a KRR profiler with spatial
// sampling shadows the stream at negligible cost. Periodically the
// operator asks: *for my current memory budget, which eviction
// sampling size K minimizes the miss ratio?* — the DLRU idea of
// dynamically configuring Redis's maxmemory-samples.
package main

import (
	"fmt"
	"log"

	"krr"
)

func main() {
	// A Type A workload: loops and scans make the choice of K matter.
	gen := krr.PresetReader("msr-web", 0.4, 11, false)

	const budgetObjects = 30_000
	candidateKs := []int{1, 2, 4, 8, 16, 32}

	// One lightweight spatially-sampled profiler per candidate K —
	// each tracks ~rate × distinct objects, cheap enough to run all
	// six online.
	rate := 0.05
	profilers := map[int]*krr.Profiler{}
	for _, k := range candidateKs {
		p, err := krr.NewProfiler(krr.Config{K: k, Seed: 5, SamplingRate: rate})
		if err != nil {
			log.Fatal(err)
		}
		profilers[k] = p
	}

	const window = 300_000
	fmt.Printf("shadow-profiling %d requests at sampling rate %.2g...\n\n", window, rate)
	for i := 0; i < window; i++ {
		req, err := gen.Next()
		if err != nil {
			log.Fatal(err)
		}
		// (A real deployment would serve the request here.)
		for _, p := range profilers {
			p.Process(req)
		}
	}

	fmt.Printf("predicted miss ratio at a %d-object budget:\n", budgetObjects)
	bestK, bestMiss := 0, 2.0
	for _, k := range candidateKs {
		miss := profilers[k].ObjectMRC().Eval(budgetObjects)
		marker := ""
		if miss < bestMiss {
			bestK, bestMiss = k, miss
			marker = ""
		}
		fmt.Printf("  K = %2d -> %.4f%s\n", k, miss, marker)
	}
	fmt.Printf("\nrecommended maxmemory-samples: %d (predicted miss ratio %.4f)\n", bestK, bestMiss)
	fmt.Println("profiler footprint:", profilers[bestK].Stack().MemoryOverheadBytes(), "bytes of metadata")
}
