// Online MRC monitoring: the paper's motivating application (§1).
// A production cache serves traffic while KRR profilers with spatial
// sampling shadow the stream at negligible cost. Periodically the
// operator asks: *for my current memory budget, which eviction
// sampling size K minimizes the miss ratio?* — the DLRU idea of
// dynamically configuring Redis's maxmemory-samples.
//
// The shadow profilers run through the model layer and are read with
// non-finalizing Snapshots, so the recommendation updates mid-stream
// while the profilers keep consuming traffic — the same flow cmd/
// krrserve serves over HTTP.
package main

import (
	"fmt"
	"log"

	"krr"
)

func main() {
	// A Type A workload: loops and scans make the choice of K matter.
	gen := krr.PresetReader("msr-web", 0.4, 11, false)

	const budgetObjects = 30_000
	candidateKs := []int{1, 2, 4, 8, 16, 32}

	// One lightweight spatially-sampled model per candidate K — each
	// tracks ~rate × distinct objects, cheap enough to run all six
	// online.
	rate := 0.05
	models := map[int]krr.Model{}
	for _, k := range candidateKs {
		m, err := krr.NewModel("krr", krr.ModelOptions{K: k, Seed: 5, SamplingRate: rate})
		if err != nil {
			log.Fatal(err)
		}
		models[k] = m
	}

	const window = 100_000
	const windows = 3
	fmt.Printf("shadow-profiling %d windows of %d requests at sampling rate %.2g...\n",
		windows, window, rate)
	for w := 1; w <= windows; w++ {
		for i := 0; i < window; i++ {
			req, err := gen.Next()
			if err != nil {
				log.Fatal(err)
			}
			// (A real deployment would serve the request here.)
			for _, m := range models {
				if err := m.Process(req); err != nil {
					log.Fatal(err)
				}
			}
		}
		// Mid-stream reading: snapshots never finalize, so the next
		// window's Process calls remain legal.
		report(w*window, budgetObjects, candidateKs, models)
	}
}

// report snapshots every candidate model and prints the per-K miss
// ratios at the budget, flagging the best choice.
func report(processed int, budget uint64, ks []int, models map[int]krr.Model) {
	miss := map[int]float64{}
	bestK, bestMiss := 0, 2.0
	// Decide the winner over all candidates first, then print — so the
	// marker lands on the true minimum rather than on every running
	// best seen in iteration order.
	for _, k := range ks {
		snap := models[k].Snapshot()
		miss[k] = snap.Object.Eval(budget)
		if miss[k] < bestMiss {
			bestK, bestMiss = k, miss[k]
		}
	}
	fmt.Printf("\nafter %d requests, predicted miss ratio at a %d-object budget:\n",
		processed, budget)
	for _, k := range ks {
		marker := ""
		if k == bestK {
			marker = "  <- best"
		}
		fmt.Printf("  K = %2d -> %.4f%s\n", k, miss[k], marker)
	}
	fmt.Printf("recommended maxmemory-samples: %d (predicted miss ratio %.4f)\n", bestK, bestMiss)
}
