// Redis validation (§5.7): start the redislike server, replay a
// workload against it over RESP at several memory limits, and compare
// the engine's measured miss ratios with KRR's one-pass prediction.
package main

import (
	"fmt"
	"log"

	"krr"
	"krr/internal/redislike"
	"krr/internal/trace"
)

func main() {
	const k = redislike.DefaultSamples // Redis maxmemory-samples = 5
	gen := krr.PresetReader("msr-src2", 0.3, 9, false)
	tr, err := krr.Collect(gen, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := trace.Summarize(tr.Reader())
	if err != nil {
		log.Fatal(err)
	}

	// One-pass KRR prediction with spatial sampling.
	rate := krr.SamplingRateFor(sum.DistinctObjects)
	model, err := krr.BuildMRC(tr.Reader(), krr.Config{K: k, Seed: 2, SamplingRate: rate})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %d requests, %d distinct objects (KRR sampling rate %.3g)\n\n",
		sum.Requests, sum.DistinctObjects, rate)
	fmt.Println("objects budget | redislike miss | KRR predicted")

	const objCost = 200 + 48 // value + engine per-key overhead
	for _, budget := range krr.EvenSizes(uint64(sum.DistinctObjects), 6) {
		srv := redislike.NewServer(redislike.Config{
			MaxMemory: budget * objCost,
			Samples:   k,
			Seed:      budget,
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		client, err := redislike.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}

		var hits, total int
		for _, req := range tr.Reqs {
			total++
			if _, ok, err := client.Get(req.Key); err != nil {
				log.Fatal(err)
			} else if ok {
				hits++
			} else if err := client.Set(req.Key, 200); err != nil {
				log.Fatal(err)
			}
		}
		measured := 1 - float64(hits)/float64(total)
		client.Close()
		srv.Close()

		fmt.Printf("%14d | %14.4f | %13.4f\n", budget, measured, model.Eval(budget))
	}
	fmt.Println("\nKRR predicts the RESP-served engine's curve without running it at each size.")
}
