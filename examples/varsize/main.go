// Variable object sizes: compare the uniform-size assumption
// ("uni-KRR") against the size-aware var-KRR model (§4.4.1) on a
// block workload whose I/O sizes correlate with the address region —
// a hot metadata region of 512-byte blocks amid 64 KiB sequential
// stripes — validating both against a byte-capacity K-LRU simulation.
//
// This is the Fig 5.3(A) situation: the size distribution *along the
// stack* differs from the global mean, so uni-KRR's byte distances
// are systematically wrong while var-KRR's sizeArray tracks them.
package main

import (
	"fmt"
	"log"

	"krr"
	"krr/internal/simulator"
	"krr/internal/workload"
)

func main() {
	const k = 8
	gen := workload.NewMSRLike(7, workload.MSRParams{
		Blocks:    45_000,
		HotWeight: 0.5, SeqWeight: 0.2, LoopWeight: 0.3,
		HotFraction: 0.1, HotAlpha: 1.0,
		SeqRunMean: 192, LoopLen: 18_000, LoopRepeats: 3,
		Sizes: workload.AddressSize{
			Boundary: 4_500,
			Below:    workload.FixedSize(512),    // hot metadata region
			Above:    workload.FixedSize(65_536), // cold data stripes
		},
	})
	tr, err := krr.Collect(gen, 400_000)
	if err != nil {
		log.Fatal(err)
	}

	build := func(mode krr.ByteMode) *krr.Curve {
		p, err := krr.NewProfiler(krr.Config{K: k, Seed: 1, Bytes: mode})
		if err != nil {
			log.Fatal(err)
		}
		if err := p.ProcessAll(tr.Reader()); err != nil {
			log.Fatal(err)
		}
		c, err := p.ByteMRC()
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	uni := build(krr.BytesUniform)
	vark := build(krr.BytesSizeArray)

	// Ground truth: byte-capacity K-LRU simulation across the working
	// set, with extra resolution at small sizes where the hot region
	// lives.
	wss := vark.WSS()
	var sizes []uint64
	for _, f := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0} {
		sizes = append(sizes, uint64(float64(wss)*f))
	}
	truth, err := simulator.KLRUByteMRC(tr, k, sizes, 3, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("byte-capacity K-LRU (K=%d), region-correlated block sizes\n\n", k)
	fmt.Println("cache bytes | simulated | uni-KRR | var-KRR")
	for _, s := range sizes {
		fmt.Printf("%11d | %9.4f | %7.4f | %7.4f\n", s, truth.Eval(s), uni.Eval(s), vark.Eval(s))
	}
	fmt.Printf("\nMAE uni-KRR: %.4f\nMAE var-KRR: %.4f\n",
		krr.MAE(uni, truth, sizes), krr.MAE(vark, truth, sizes))
	fmt.Println("\nvar-KRR's sizeArray (Algorithm 3) tracks byte distances that the uniform assumption misestimates.")
}
