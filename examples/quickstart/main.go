// Quickstart: model a Redis-style K-LRU cache (maxmemory-samples = 10)
// over a Zipfian workload and print the miss ratio curve — the
// one-pass alternative to simulating every candidate cache size.
package main

import (
	"fmt"
	"log"

	"krr"
)

func main() {
	// A Zipfian key-value workload: 100k objects, 500k requests.
	gen := krr.PresetReader("zipf", 1.0, 42, false)
	if gen == nil {
		log.Fatal("preset missing")
	}

	// One pass of KRR models a K-LRU cache at *every* size at once.
	curve, err := krr.BuildMRC(krr.Limit(gen, 500_000), krr.Config{
		K:    10, // Redis default maxmemory-samples
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("K-LRU (K=10) miss ratio curve:")
	fmt.Println("cache size (objects) | predicted miss ratio")
	for _, size := range krr.EvenSizes(curve.WSS(), 10) {
		fmt.Printf("%20d | %.4f\n", size, curve.Eval(size))
	}

	// The classic capacity-planning question: how much memory for a
	// target hit rate?
	target := 0.35
	for _, size := range krr.EvenSizes(curve.WSS(), 200) {
		if curve.Eval(size) <= target {
			fmt.Printf("\nsmallest cache with miss ratio <= %.2f: ~%d objects\n", target, size)
			break
		}
	}
}
