package krr_test

import (
	"math"
	"testing"

	"krr"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	gen := krr.PresetReader("msr-web", 0.02, 42, false)
	if gen == nil {
		t.Fatal("known preset returned nil")
	}
	curve, err := krr.BuildMRC(krr.Limit(gen, 30000), krr.Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Eval(0) != 1 {
		t.Fatal("empty cache must miss everything")
	}
	big, small := curve.Eval(curve.WSS()), curve.Eval(10)
	if big >= small {
		t.Fatalf("curve not decreasing: miss(wss)=%v miss(10)=%v", big, small)
	}
}

func TestFacadeUnknownPreset(t *testing.T) {
	if krr.PresetReader("no-such-preset", 1, 1, false) != nil {
		t.Fatal("unknown preset must return nil")
	}
	if len(krr.PresetNames()) < 20 {
		t.Fatal("preset registry unexpectedly small")
	}
}

func TestFacadeModelMatchesSimulation(t *testing.T) {
	gen := krr.PresetReader("zipf", 0.02, 7, false)
	tr, err := krr.Collect(gen, 40000)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	model, err := krr.BuildMRC(tr.Reader(), krr.Config{K: k, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sizes := krr.EvenSizes(2000, 8)
	truth, err := krr.SimulateMRC(tr, k, sizes, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mae := krr.MAE(model, truth, sizes); mae > 0.03 {
		t.Fatalf("facade end-to-end MAE %v", mae)
	}
}

func TestFacadeCaches(t *testing.T) {
	c := krr.NewKLRUCache(10, 5, 1)
	for k := uint64(0); k < 100; k++ {
		c.Access(krr.Request{Key: k, Size: 200, Op: krr.OpGet})
	}
	if c.Len() != 10 {
		t.Fatalf("klru cache len %d", c.Len())
	}
	lru := krr.NewLRUCache(4)
	lru.Access(krr.Request{Key: 1, Size: 1})
	if !lru.Access(krr.Request{Key: 1, Size: 1}) {
		t.Fatal("lru must hit resident key")
	}
	bc := krr.NewKLRUByteCache(1000, 5, 1)
	bc.Access(krr.Request{Key: 1, Size: 600})
	bc.Access(krr.Request{Key: 2, Size: 600})
	if bc.UsedBytes() > 1000 {
		t.Fatal("byte cache exceeded capacity")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if krr.KPrimeFor(1) != 1 {
		t.Fatal("KPrimeFor(1)")
	}
	if math.Abs(krr.KPrimeFor(10)-math.Pow(10, 1.4)) > 1e-9 {
		t.Fatal("KPrimeFor(10)")
	}
	if krr.SamplingRateFor(1_000_000_000) != krr.DefaultSamplingRate {
		t.Fatal("rate for huge workloads must be the default")
	}
	if krr.SamplingRateFor(100) != 1 {
		t.Fatal("tiny workloads must disable sampling")
	}
}

func TestFacadeVariableSizes(t *testing.T) {
	gen := krr.PresetReader("tw-26.0", 0.02, 5, true)
	p, err := krr.NewProfiler(krr.Config{K: 8, Seed: 1, Bytes: krr.BytesSizeArray})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := krr.Collect(gen, 30000)
	if err := p.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	bc, err := p.ByteMRC()
	if err != nil {
		t.Fatal(err)
	}
	if bc.Eval(0) != 1 || bc.Len() < 3 {
		t.Fatal("byte curve malformed")
	}
}

func TestFacadeModelRegistry(t *testing.T) {
	models := krr.Models()
	if len(models) < 10 {
		t.Fatalf("registry has %d models, want >= 10", len(models))
	}
	tr, err := krr.Collect(krr.PresetReader("zipf", 0.05, 7, false), 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Every registered model builds a curve through the facade.
	for _, info := range models {
		curve, err := krr.BuildMRCWith(info.Name, tr.Reader(), krr.ModelOptions{Seed: 3})
		if err != nil {
			t.Fatalf("BuildMRCWith(%s): %v", info.Name, err)
		}
		if curve.Eval(0) != 1 {
			t.Fatalf("%s: miss(0) = %v, want 1", info.Name, curve.Eval(0))
		}
	}
	// The alias and the sharded path work end to end.
	if _, err := krr.BuildMRCWith("lru", tr.Reader(), krr.ModelOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := krr.NewModel("krr", krr.ModelOptions{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range tr.Reqs {
		if err := m.Process(req); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Seen != uint64(tr.Len()) {
		t.Fatalf("Seen = %d, want %d", st.Seen, tr.Len())
	}
	if m.ObjectMRC() == nil {
		t.Fatal("nil curve")
	}
}
