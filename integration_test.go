package krr_test

import (
	"fmt"
	"testing"

	"krr/internal/aet"
	"krr/internal/core"
	"krr/internal/counterstacks"
	"krr/internal/mimir"
	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/shards"
	"krr/internal/trace"
	"krr/internal/workload"
)

// TestAllLRUModelsAgree drives every exact-LRU MRC technique in the
// repository over one trace and checks each against the exact Olken
// stack — the §6.1 landscape, end to end.
func TestAllLRUModelsAgree(t *testing.T) {
	g := workload.NewMSRLike(9, workload.MSRParams{
		Blocks: 15000, HotWeight: 0.55, SeqWeight: 0.25, LoopWeight: 0.2,
		HotFraction: 0.15, HotAlpha: 0.9, LoopLen: 4000, LoopRepeats: 2,
	})
	tr, err := trace.Collect(g, 250000)
	if err != nil {
		t.Fatal(err)
	}

	exactProf := olken.NewProfiler(1)
	if err := exactProf.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	exact := exactProf.ObjectMRC(1)
	sizes := mrc.EvenSizes(15000, 20)

	models := []struct {
		name      string
		tolerance float64
		build     func() (*mrc.Curve, error)
	}{
		{"shards-fixed-rate", 0.03, func() (*mrc.Curve, error) {
			s := shards.NewFixedRate(0.3, 2, true)
			if err := s.ProcessAll(tr.Reader()); err != nil {
				return nil, err
			}
			return s.MRC(), nil
		}},
		{"shards-fixed-size", 0.05, func() (*mrc.Curve, error) {
			s := shards.NewFixedSize(1.0, 4096, 3)
			if err := s.ProcessAll(tr.Reader()); err != nil {
				return nil, err
			}
			return s.MRC(), nil
		}},
		{"aet", 0.05, func() (*mrc.Curve, error) {
			m := aet.New(0)
			if err := m.ProcessAll(tr.Reader()); err != nil {
				return nil, err
			}
			return m.MRC(), nil
		}},
		{"statstack", 0.05, func() (*mrc.Curve, error) {
			m := aet.New(0)
			if err := m.ProcessAll(tr.Reader()); err != nil {
				return nil, err
			}
			return m.StatStackMRC(), nil
		}},
		{"counterstacks", 0.05, func() (*mrc.Curve, error) {
			cs := counterstacks.New(counterstacks.Config{DownsampleInterval: 500, MaxCounters: 128})
			if err := cs.ProcessAll(tr.Reader()); err != nil {
				return nil, err
			}
			return cs.MRC(), nil
		}},
		{"mimir", 0.04, func() (*mrc.Curve, error) {
			m := mimir.New(mimir.DefaultBuckets)
			if err := m.ProcessAll(tr.Reader()); err != nil {
				return nil, err
			}
			return m.MRC(), nil
		}},
		{"krr-huge-k", 0.03, func() (*mrc.Curve, error) {
			// KRR converges to the LRU stack as K grows (§4.1).
			p := core.MustProfiler(core.Config{K: 64, Seed: 5})
			if err := p.ProcessAll(tr.Reader()); err != nil {
				return nil, err
			}
			return p.ObjectMRC(), nil
		}},
	}
	for _, m := range models {
		m := m
		t.Run(m.name, func(t *testing.T) {
			curve, err := m.build()
			if err != nil {
				t.Fatal(err)
			}
			mae := mrc.MAE(curve, exact, sizes)
			if mae > m.tolerance {
				t.Fatalf("%s MAE %v exceeds tolerance %v", m.name, mae, m.tolerance)
			}
			t.Log(fmt.Sprintf("%s MAE vs exact LRU: %.4f", m.name, mae))
		})
	}
}
