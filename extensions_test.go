package krr_test

import (
	"testing"

	"krr"
)

func TestFacadeAET(t *testing.T) {
	mon := krr.NewAETMonitor(0)
	gen := krr.PresetReader("zipf", 0.02, 3, false)
	tr, _ := krr.Collect(gen, 30000)
	if err := mon.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	c := mon.MRC()
	if c.Eval(10) <= c.Eval(2000) {
		t.Fatal("AET curve not decreasing")
	}
}

func TestFacadeMiniSim(t *testing.T) {
	sizes := krr.EvenSizes(2000, 5)
	sim, err := krr.NewMiniSim(krr.MiniSimConfig{Sizes: sizes, Rate: 0.5, K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := krr.PresetReader("zipf", 0.02, 3, false)
	tr, _ := krr.Collect(gen, 30000)
	if err := sim.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	if sim.MRC().Len() != len(sizes) {
		t.Fatal("minisim curve malformed")
	}
}

func TestFacadeDLRU(t *testing.T) {
	cache := krr.NewTunableKLRUCache(500, 32, 1)
	ctl, err := krr.NewDLRUController(krr.DLRUConfig{
		BudgetObjects: 500,
		Candidates:    []int{1, 32},
		Window:        5000,
		SamplingRate:  0.5,
		Seed:          1,
	}, cache)
	if err != nil {
		t.Fatal(err)
	}
	gen := krr.PresetReader("loop", 0.02, 3, false)
	if err := ctl.ProcessAll(krr.Limit(gen, 30000)); err != nil {
		t.Fatal(err)
	}
	if ctl.CurrentK() != 1 {
		t.Fatalf("controller should pick K=1 on a loop, got %d", ctl.CurrentK())
	}
}

func TestFacadeNSPAndOPT(t *testing.T) {
	gen := krr.PresetReader("zipf", 0.01, 3, false)
	tr, _ := krr.Collect(gen, 20000)

	lfu := krr.NewLFUStack(1)
	for _, req := range tr.Reqs {
		lfu.Process(req)
	}
	lfuCurve := lfu.MRC()
	if lfuCurve.Eval(10) <= lfuCurve.Eval(900) {
		t.Fatal("LFU curve not decreasing")
	}

	sizes := krr.EvenSizes(1000, 5)
	opt := krr.OPTMRC(tr, sizes, 2)
	truth, _ := krr.SimulateMRC(tr, 5, sizes, 7, 2)
	for i, s := range sizes {
		if opt.Miss[i] > truth.Eval(s)+1e-9 {
			t.Fatalf("OPT above K-LRU at %d", s)
		}
	}
}

func TestFacadeSampledPolicies(t *testing.T) {
	for _, prio := range []krr.EvictionPriority{
		krr.PriorityLRU, krr.PriorityLFU, krr.PriorityHyperbolic, krr.PriorityTTL,
	} {
		c := krr.NewSampledCache(krr.SampledCacheConfig{
			Capacity: krr.ObjectCapacity(100),
			K:        5,
			Priority: prio,
			Seed:     1,
		})
		for k := uint64(0); k < 1000; k++ {
			c.Access(krr.Request{Key: k, Size: 1})
		}
		if c.Len() != 100 {
			t.Fatalf("%s: len %d", prio.Name(), c.Len())
		}
	}
	bc := krr.NewSampledCache(krr.SampledCacheConfig{
		Capacity: krr.ByteCapacityOf(500),
		K:        3,
		Priority: krr.PriorityLRU,
		Seed:     1,
	})
	bc.Access(krr.Request{Key: 1, Size: 400})
	bc.Access(krr.Request{Key: 2, Size: 400})
	if bc.UsedBytes() > 500 {
		t.Fatal("byte capacity violated")
	}
}
